// Package mac models the link layer: unicast with acknowledgements and
// bounded retransmissions (ARQ), the reliability mechanism whose
// retransmission counts Dophy mines for tomography.
//
// A transmission attempt succeeds with the link's instantaneous PRR from the
// radio model. On success an acknowledgement returns; with probability
// AckLoss the ACK is lost, in which case the sender retries even though the
// receiver already has the packet (the receiver suppresses the duplicate, so
// delivery stands but the attempt count inflates — the real-world bias any
// retransmission-count scheme must live with). After MaxRetx unsuccessful
// retransmissions the packet is dropped by the sender.
//
// Collisions and queueing are intentionally not modelled: the paper's
// mechanisms operate on per-link Bernoulli loss as seen above the MAC, and
// CSMA backoff only stretches time. DESIGN.md records this scoping.
package mac

import (
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// Result reports the outcome of one ARQ exchange.
type Result struct {
	// Attempts is the number of radio transmissions performed (1..MaxRetx+1).
	Attempts int
	// Delivered reports whether the receiver got the packet (possibly via an
	// attempt whose ACK was lost).
	Delivered bool
	// FirstDelivered is the 1-based attempt index of the first frame the
	// receiver got, or 0 if none arrived. Because every frame carries its
	// attempt number, this is exactly the retransmission-count observation a
	// receiver-side annotator (Dophy) can record for the previous hop.
	FirstDelivered int
	// AckedAttempt is the attempt index (1-based) the sender believes
	// succeeded, or 0 if the sender gave up. When an ACK is lost this can
	// exceed the attempt that actually delivered the packet.
	AckedAttempt int
}

// Config parameterises the ARQ link layer.
type Config struct {
	MaxRetx int     // retransmissions allowed after the first attempt
	AckLoss float64 // probability an ACK is lost (fixed-rate model)
	// AckOverReverseLink makes ACK delivery follow the radio model's PRR of
	// the reverse link instead of the fixed AckLoss — the realistic model
	// for asymmetric links, where a good forward link can pair with a bad
	// ACK channel. When set, AckLoss is ignored.
	AckOverReverseLink bool
}

// DefaultConfig mirrors common low-power MAC settings (7 retransmissions,
// reliable ACKs).
func DefaultConfig() Config {
	return Config{MaxRetx: 7, AckLoss: 0}
}

// ARQ performs acknowledged unicast over a radio model.
type ARQ struct {
	cfg     Config
	model   radio.Model
	r       *rng.Source
	perNode []*rng.Source // sender-keyed streams (sharded mode); nil = use r
	rec     *trace.Recorder
}

// New builds an ARQ layer. rec may be nil to skip ground-truth recording.
func New(cfg Config, model radio.Model, r *rng.Source, rec *trace.Recorder) *ARQ {
	if cfg.MaxRetx < 0 {
		panic("mac: MaxRetx must be >= 0")
	}
	if cfg.AckLoss < 0 || cfg.AckLoss >= 1 {
		panic("mac: AckLoss must be in [0,1)")
	}
	return &ARQ{cfg: cfg, model: model, r: r, rec: rec}
}

// MaxAttempts returns the attempt budget per packet (MaxRetx + 1).
func (a *ARQ) MaxAttempts() int { return a.cfg.MaxRetx + 1 }

// UsePerNodeRNG switches every draw of an exchange to the sending node's
// stream (indexed by l.From). The sharded engine requires this: a sender's
// draws then depend only on its own event order, not on how exchanges from
// different nodes interleave across shards. Call before the first Send.
func (a *ARQ) UsePerNodeRNG(streams []*rng.Source) { a.perNode = streams }

//dophy:hotpath
func (a *ARQ) rng(sender topo.NodeID) *rng.Source {
	if a.perNode != nil {
		return a.perNode[sender]
	}
	return a.r
}

// Send runs one ARQ exchange on link l at virtual time now.
func (a *ARQ) Send(l topo.Link, now sim.Time) Result {
	var res Result
	r := a.rng(l.From)
	for attempt := 1; attempt <= a.cfg.MaxRetx+1; attempt++ {
		res.Attempts = attempt
		p := a.model.PRR(l, now)
		received := r.Bool(p)
		if a.rec != nil {
			a.rec.Attempt(l, received)
		}
		if !received {
			continue
		}
		if !res.Delivered {
			res.Delivered = true
			res.FirstDelivered = attempt
		}
		//dophy:allow valrange -- New panics unless AckLoss is in [0,1)
		acked := !r.Bool(a.cfg.AckLoss)
		if a.cfg.AckOverReverseLink {
			rev := topo.Link{From: l.To, To: l.From}
			acked = r.Bool(a.model.PRR(rev, now))
		}
		if acked {
			res.AckedAttempt = attempt
			return res
		}
		// ACK lost: the receiver has the packet (and will suppress the
		// duplicates that follow), but the sender keeps retrying.
	}
	return res
}
