package topo

// LinkIdx is a dense link-table index: the position of a directed link in a
// LinkTable's canonical order. It is a defined type (not a plain int) so the
// dophy-lint idxdomain rule can prove that table indices, NodeIDs, neighbor
// offsets and epoch counters never cross domains without an explicit,
// reviewable conversion. Go permits indexing a slice with any integer type,
// so `loss[i]` works directly when i is a LinkIdx; the underlying int32
// matches the table's flat lookup arrays and the wire encoding of path
// records.
type LinkIdx int32

// NoLink is the LinkIdx sentinel for "not a link of this topology".
const NoLink LinkIdx = -1

// LinkTable is a stable, dense enumeration of a topology's directed links.
// Links are numbered 0..Len()-1 in canonical order — ascending From, then
// ascending To — which is exactly the order Links() returns, so any slice
// indexed by the table is already sorted for deterministic iteration. The
// estimation pipeline keys its per-link state ([]LinkCounts, []float64,
// []geomle.Obs, ...) by table index instead of map[Link] hashing; maps
// survive only at export boundaries.
//
// The table is built once per Topology and is immutable, so it is safe to
// share across goroutines.
type LinkTable struct {
	n     int
	links []Link    // table index -> link, canonical order
	idx   []LinkIdx // flat n*n lookup: From*n+To -> table index; nil above flatIdxMaxNodes
	off   []LinkIdx // len n+1: links[off[i]:off[i+1]] originate at node i
}

// flatIdxMaxNodes bounds the O(n^2) flat lookup array to 16 MiB of int32.
// Beyond it (the 100k-node scale tiers) Index falls back to a binary search
// of the node's sorted out-link span — same results, O(log degree) instead
// of O(1), and degree is single digits in every layout we generate.
const flatIdxMaxNodes = 2048

// newLinkTable enumerates the links of sorted adjacency lists.
func newLinkTable(neighbors [][]NodeID) *LinkTable {
	n := len(neighbors)
	total := 0
	for _, nbs := range neighbors {
		total += len(nbs)
	}
	t := &LinkTable{
		n:     n,
		links: make([]Link, 0, total),
		off:   make([]LinkIdx, n+1),
	}
	if n <= flatIdxMaxNodes {
		t.idx = make([]LinkIdx, n*n)
		for i := range t.idx {
			t.idx[i] = NoLink
		}
	}
	for id, nbs := range neighbors {
		t.off[id] = LinkIdx(len(t.links))
		for _, nb := range nbs {
			if t.idx != nil {
				t.idx[id*n+int(nb)] = LinkIdx(len(t.links))
			}
			t.links = append(t.links, Link{From: NodeID(id), To: nb})
		}
	}
	t.off[n] = LinkIdx(len(t.links))
	return t
}

// Len returns the number of directed links.
func (t *LinkTable) Len() int { return len(t.links) }

// Count returns Len() typed as the exclusive upper bound for index loops:
//
//	for i := topo.LinkIdx(0); i < lt.Count(); i++ { ... }
func (t *LinkTable) Count() LinkIdx { return LinkIdx(len(t.links)) }

// Nodes returns the number of nodes in the underlying topology.
func (t *LinkTable) Nodes() int { return t.n }

// Link returns the link at table index i (canonical order).
//
//dophy:readonly recv -- the table is built once and shared by every estimator
func (t *LinkTable) Link(i LinkIdx) Link { return t.links[i] }

// Index returns l's table index, or NoLink when l is not a link of the
// topology (including out-of-range node ids and self-links).
//
//dophy:hotpath
//dophy:readonly recv -- the table is built once and shared by every estimator
func (t *LinkTable) Index(l Link) LinkIdx {
	if l.From < 0 || l.To < 0 || int(l.From) >= t.n || int(l.To) >= t.n {
		return NoLink
	}
	if t.idx != nil {
		return t.idx[int(l.From)*t.n+int(l.To)]
	}
	// Binary search of the From node's out-link span, which is sorted by To.
	lo, hi := t.off[l.From], t.off[l.From+1]
	for lo < hi {
		mid := lo + (hi-lo)/2
		if t.links[mid].To < l.To {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < t.off[l.From+1] && t.links[lo].To == l.To {
		return lo
	}
	return NoLink
}

// NodeSpan returns the half-open table index range [lo, hi) of the links
// originating at id; iterating it visits id's outgoing links in ascending
// To order.
//
//dophy:readonly recv -- the table is built once and shared by every estimator
func (t *LinkTable) NodeSpan(id NodeID) (lo, hi LinkIdx) {
	return t.off[id], t.off[id+1]
}

// NeighborIndex returns the position of l.To within l.From's sorted
// neighbor list, or -1 when l is not a link — an O(1) replacement for
// scanning Neighbors(l.From). The result is a neighbor *offset*, a
// different integer domain from the table index, so it stays a plain int.
//
//dophy:readonly recv -- the table is built once and shared by every estimator
func (t *LinkTable) NeighborIndex(l Link) int {
	i := t.Index(l)
	if i == NoLink {
		return -1
	}
	return int(i - t.off[l.From])
}
