package topo

import (
	"testing"

	"dophy/internal/rng"
)

// tableTopologies covers every generator with representative sizes.
func tableTopologies(t testing.TB) map[string]*Topology {
	t.Helper()
	return map[string]*Topology{
		"single":   Chain(1, 10, 10.5),
		"chain":    Chain(8, 10, 10.5),
		"chain2":   Chain(12, 10, 21), // 2-hop reach: degree > 2
		"grid":     Grid(5, 10, 1.5, 11, rng.New(3)),
		"uniform":  Uniform(40, 100, 100, 25, rng.New(4)),
		"corridor": Corridor(30, 200, 20, 30, rng.New(5)),
		"points": FromPoints([]Point{
			{0, 0}, {5, 0}, {0, 5}, {100, 100},
		}, 7),
	}
}

func checkTable(t *testing.T, tp *Topology) {
	t.Helper()
	lt := tp.LinkTable()
	if lt == nil {
		t.Fatal("nil LinkTable")
	}
	if lt.Nodes() != tp.N() {
		t.Fatalf("Nodes() = %d, want %d", lt.Nodes(), tp.N())
	}

	// Table order matches Links() exactly, and indices round-trip.
	links := tp.Links()
	if lt.Len() != len(links) {
		t.Fatalf("Len() = %d, want %d links", lt.Len(), len(links))
	}
	for i, l := range links {
		if got := lt.Link(LinkIdx(i)); got != l {
			t.Fatalf("Link(%d) = %v, want %v", i, got, l)
		}
		if got := lt.Index(l); got != LinkIdx(i) {
			t.Fatalf("Index(%v) = %d, want %d", l, got, i)
		}
	}

	// Canonical order: ascending From, then ascending To.
	for i := 1; i < len(links); i++ {
		a, b := links[i-1], links[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("links out of canonical order at %d: %v then %v", i, a, b)
		}
	}

	// Every non-link — including self-links and out-of-range ids — maps
	// to -1.
	n := tp.N()
	for from := -1; from <= n; from++ {
		for to := -1; to <= n; to++ {
			l := Link{From: NodeID(from), To: NodeID(to)}
			want := -1
			if from >= 0 && from < n && to >= 0 && to < n && tp.Adjacent(NodeID(from), NodeID(to)) {
				want = 0 // any valid index; checked for equality below
			}
			got := lt.Index(l)
			if want == -1 && got != -1 {
				t.Fatalf("Index(%v) = %d, want -1", l, got)
			}
			if want == 0 && got < 0 {
				t.Fatalf("Index(%v) = %d for adjacent pair", l, got)
			}
		}
	}

	// NodeSpan covers the table exactly once, in order, and NeighborIndex
	// matches the position in the sorted neighbor list.
	seen := LinkIdx(0)
	for id := 0; id < n; id++ {
		lo, hi := lt.NodeSpan(NodeID(id))
		if lo != seen {
			t.Fatalf("NodeSpan(%d) lo = %d, want %d", id, lo, seen)
		}
		nbs := tp.Neighbors(NodeID(id))
		if int(hi-lo) != len(nbs) {
			t.Fatalf("NodeSpan(%d) width = %d, want %d", id, hi-lo, len(nbs))
		}
		for j, nb := range nbs {
			l := Link{From: NodeID(id), To: nb}
			if got := lt.NeighborIndex(l); got != j {
				t.Fatalf("NeighborIndex(%v) = %d, want %d", l, got, j)
			}
		}
		seen = hi
	}
	if seen != lt.Count() {
		t.Fatalf("NodeSpans cover %d links, want %d", seen, lt.Len())
	}
	if lt.NeighborIndex(Link{From: 0, To: 0}) != -1 {
		t.Fatal("NeighborIndex of a non-link should be -1")
	}
}

func TestLinkTableRoundTrip(t *testing.T) {
	for name, tp := range tableTopologies(t) {
		t.Run(name, func(t *testing.T) { checkTable(t, tp) })
	}
}

// TestLinkTableDeterminism rebuilds each topology from the same seed and
// requires an identical table — the property every dense vector in the
// pipeline relies on.
func TestLinkTableDeterminism(t *testing.T) {
	build := func() map[string]*Topology { return tableTopologies(t) }
	a, b := build(), build()
	for name := range a {
		la, lb := a[name].LinkTable(), b[name].LinkTable()
		if la.Len() != lb.Len() {
			t.Fatalf("%s: Len %d vs %d across runs", name, la.Len(), lb.Len())
		}
		for i := LinkIdx(0); i < la.Count(); i++ {
			if la.Link(i) != lb.Link(i) {
				t.Fatalf("%s: Link(%d) differs across runs: %v vs %v",
					name, i, la.Link(i), lb.Link(i))
			}
		}
	}
}

// FuzzLinkTable drives the round-trip property through the Uniform
// generator with fuzzed sizes and seeds.
func FuzzLinkTable(f *testing.F) {
	f.Add(uint64(1), 10)
	f.Add(uint64(42), 1)
	f.Add(uint64(7), 60)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 1 || n > 200 {
			t.Skip()
		}
		tp := Uniform(n, 100, 100, 25, rng.New(seed))
		lt := tp.LinkTable()
		for i := LinkIdx(0); i < lt.Count(); i++ {
			l := lt.Link(i)
			if got := lt.Index(l); got != i {
				t.Fatalf("Index(Link(%d)) = %d", i, got)
			}
			if l.From == l.To {
				t.Fatalf("self-link %v enumerated", l)
			}
		}
		for id := 0; id < n; id++ {
			if lt.Index(Link{From: NodeID(id), To: NodeID(id)}) != -1 {
				t.Fatalf("self-link %d->%d has an index", id, id)
			}
		}
	})
}
