// Package topo generates and inspects sensor-network topologies.
//
// A Topology is a set of node positions plus a neighbor relation induced by
// a communication range. Node 0 is always the sink. Generators produce the
// layouts used throughout the WSN literature: a grid with placement jitter
// (dense testbed), uniform random placement over a square (ad-hoc field
// deployment) and a corridor (long, thin multi-hop network that stresses
// path length).
package topo

import (
	"fmt"
	"math"
	"sort"

	"dophy/internal/rng"
)

// NodeID identifies a node. The sink is always NodeID 0.
type NodeID int

// Sink is the collection root of every topology.
const Sink NodeID = 0

// Point is a 2-D position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Topology is an immutable node layout with a precomputed neighbor relation.
type Topology struct {
	Pos       []Point    // indexed by NodeID
	Range     float64    // communication range in meters
	neighbors [][]NodeID // sorted adjacency lists
	lt        *LinkTable // dense enumeration of the directed links
}

// LinkTable returns the topology's dense link enumeration. The table is
// built once at construction and shared; callers must not mutate it.
//
//dophy:readonly recv -- the topology is immutable after its Build
func (t *Topology) LinkTable() *LinkTable { return t.lt }

// N returns the number of nodes including the sink.
func (t *Topology) N() int { return len(t.Pos) }

// Neighbors returns the (sorted, read-only) neighbor list of id.
//
//dophy:readonly recv -- the topology is immutable after its Build
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }

// Adjacent reports whether a and b are within communication range.
//
//dophy:readonly recv -- the topology is immutable after its Build
func (t *Topology) Adjacent(a, b NodeID) bool {
	if a == b {
		return false
	}
	return Dist(t.Pos[a], t.Pos[b]) <= t.Range
}

// Distance returns the Euclidean distance between two nodes.
//
//dophy:readonly recv -- the topology is immutable after its Build
func (t *Topology) Distance(a, b NodeID) float64 {
	return Dist(t.Pos[a], t.Pos[b])
}

// bucketedBuildMinNodes is the node count above which build switches from
// the O(n^2) pairwise scan to the commRange-sized cell index. Both paths
// perform the identical Dist <= commRange comparisons and sort each list,
// so the resulting adjacency is byte-identical; the threshold only trades
// obviousness for asymptotics once n^2 starts to hurt.
const bucketedBuildMinNodes = 2048

// build computes adjacency lists from positions and range.
func build(pos []Point, commRange float64) *Topology {
	t := &Topology{Pos: pos, Range: commRange}
	if len(pos) > bucketedBuildMinNodes && commRange > 0 {
		t.neighbors = neighborsBucketed(pos, commRange)
	} else {
		t.neighbors = neighborsPairwise(pos, commRange)
	}
	t.lt = newLinkTable(t.neighbors)
	return t
}

// neighborsPairwise is the O(n^2) reference adjacency construction.
func neighborsPairwise(pos []Point, commRange float64) [][]NodeID {
	n := len(pos)
	neighbors := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Dist(pos[i], pos[j]) <= commRange {
				neighbors[i] = append(neighbors[i], NodeID(j))
				neighbors[j] = append(neighbors[j], NodeID(i))
			}
		}
	}
	for i := range neighbors {
		sort.Slice(neighbors[i], func(a, b int) bool { return neighbors[i][a] < neighbors[i][b] })
	}
	return neighbors
}

// neighborsBucketed computes the same adjacency as neighborsPairwise in
// O(n * density) by hashing nodes into commRange-sized cells: any pair
// within range lives in the same or an adjacent cell. Candidates are
// distance-checked with the same Dist comparison (squaring is sign-exact,
// so Dist(a,b) == Dist(b,a) bit-for-bit) and each list is sorted, so the
// output is byte-identical to the pairwise scan.
func neighborsBucketed(pos []Point, commRange float64) [][]NodeID {
	type cellKey struct{ x, y int }
	cells := make(map[cellKey][]NodeID, len(pos))
	key := func(p Point) cellKey {
		return cellKey{int(math.Floor(p.X / commRange)), int(math.Floor(p.Y / commRange))}
	}
	for i, p := range pos {
		c := key(p)
		cells[c] = append(cells[c], NodeID(i))
	}
	neighbors := make([][]NodeID, len(pos))
	for i, p := range pos {
		c := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range cells[cellKey{c.x + dx, c.y + dy}] {
					if j != NodeID(i) && Dist(p, pos[j]) <= commRange {
						neighbors[i] = append(neighbors[i], j)
					}
				}
			}
		}
		sort.Slice(neighbors[i], func(a, b int) bool { return neighbors[i][a] < neighbors[i][b] })
	}
	return neighbors
}

// FromPoints builds a topology from explicit positions (index 0 is the
// sink) and a communication range.
func FromPoints(pos []Point, commRange float64) *Topology {
	if len(pos) < 1 {
		panic("topo: need at least one node")
	}
	cp := make([]Point, len(pos))
	copy(cp, pos)
	return build(cp, commRange)
}

// Chain places n nodes on a line at the given spacing with the sink at one
// end — the canonical worst-case multi-hop layout for unit tests.
func Chain(n int, spacing, commRange float64) *Topology {
	if n < 1 {
		panic("topo: need at least one node")
	}
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: float64(i) * spacing}
	}
	return build(pos, commRange)
}

// Grid places n = side*side nodes on a unit grid scaled by spacing, each
// jittered by a uniform offset in [-jitter, +jitter] per axis, with the sink
// at the corner. This mirrors dense indoor testbeds (Indriya/Motelab style).
func Grid(side int, spacing, jitter, commRange float64, r *rng.Source) *Topology {
	if side < 1 {
		panic("topo: grid side must be >= 1")
	}
	pos := make([]Point, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			px := float64(x)*spacing + r.Range(-jitter, jitter)
			py := float64(y)*spacing + r.Range(-jitter, jitter)
			pos = append(pos, Point{px, py})
		}
	}
	return build(pos, commRange)
}

// Uniform places n nodes uniformly at random in a width x height field. The
// sink is pinned to the field corner (0,0) so paths have meaningful length.
func Uniform(n int, width, height, commRange float64, r *rng.Source) *Topology {
	if n < 1 {
		panic("topo: need at least one node")
	}
	pos := make([]Point, n)
	pos[0] = Point{0, 0}
	for i := 1; i < n; i++ {
		pos[i] = Point{r.Range(0, width), r.Range(0, height)}
	}
	return build(pos, commRange)
}

// Corridor places n nodes along a long thin strip of the given length and
// width, sink at one end — the classic worst case for hop count.
func Corridor(n int, length, width, commRange float64, r *rng.Source) *Topology {
	if n < 1 {
		panic("topo: need at least one node")
	}
	pos := make([]Point, n)
	pos[0] = Point{0, width / 2}
	for i := 1; i < n; i++ {
		pos[i] = Point{r.Range(0, length), r.Range(0, width)}
	}
	return build(pos, commRange)
}

// Connected reports whether every node can reach the sink over the neighbor
// relation.
func (t *Topology) Connected() bool {
	return len(t.ReachableFromSink()) == t.N()
}

// ReachableFromSink returns the set of nodes reachable from the sink (BFS).
func (t *Topology) ReachableFromSink() []NodeID {
	seen := make([]bool, t.N())
	queue := []NodeID{Sink}
	seen[Sink] = true
	var out []NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nb := range t.neighbors[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// HopCounts returns the minimum hop distance from every node to the sink;
// unreachable nodes get -1.
func (t *Topology) HopCounts() []int {
	hops := make([]int, t.N())
	for i := range hops {
		hops[i] = -1
	}
	hops[Sink] = 0
	queue := []NodeID{Sink}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[cur] {
			if hops[nb] == -1 {
				hops[nb] = hops[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return hops
}

// Link is a directed link key (From transmits to To).
type Link struct {
	From, To NodeID
}

func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Links enumerates every directed link (both directions of each adjacency)
// in canonical LinkTable order: ascending From, then ascending To.
func (t *Topology) Links() []Link {
	out := make([]Link, t.lt.Len())
	copy(out, t.lt.links)
	return out
}

// Stats summarises a topology for reporting.
type Stats struct {
	Nodes     int
	Links     int // directed
	MinDegree int
	MaxDegree int
	AvgDegree float64
	MaxHops   int
	AvgHops   float64
	Connected bool
}

// Summary computes Stats for the topology.
func (t *Topology) Summary() Stats {
	s := Stats{Nodes: t.N(), MinDegree: math.MaxInt}
	totalDeg := 0
	for _, nbs := range t.neighbors {
		d := len(nbs)
		totalDeg += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if t.N() > 0 {
		s.AvgDegree = float64(totalDeg) / float64(t.N())
	}
	s.Links = totalDeg
	hops := t.HopCounts()
	sum, cnt := 0, 0
	s.Connected = true
	for _, h := range hops {
		if h < 0 {
			s.Connected = false
			continue
		}
		if h > s.MaxHops {
			s.MaxHops = h
		}
		sum += h
		cnt++
	}
	if cnt > 1 {
		s.AvgHops = float64(sum) / float64(cnt-1) // exclude the sink itself
	}
	return s
}
