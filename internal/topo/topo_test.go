package topo

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/rng"
)

func TestGridCount(t *testing.T) {
	r := rng.New(1)
	g := Grid(5, 10, 0, 15, r)
	if g.N() != 25 {
		t.Fatalf("Grid(5) has %d nodes, want 25", g.N())
	}
}

func TestGridNoJitterAdjacency(t *testing.T) {
	r := rng.New(1)
	// spacing 10, range 10.5: 4-connectivity (diagonal is 14.1 > 10.5).
	g := Grid(3, 10, 0, 10.5, r)
	// Corner node 0 must have exactly 2 neighbors: east (1) and north (3).
	nbs := g.Neighbors(0)
	if len(nbs) != 2 || nbs[0] != 1 || nbs[1] != 3 {
		t.Fatalf("corner neighbors = %v, want [1 3]", nbs)
	}
	// Center node 4 must have 4 neighbors.
	if got := len(g.Neighbors(4)); got != 4 {
		t.Fatalf("center degree = %d, want 4", got)
	}
}

func TestGridDiagonalRange(t *testing.T) {
	r := rng.New(1)
	g := Grid(3, 10, 0, 15, r) // diagonal 14.14 within range
	if got := len(g.Neighbors(4)); got != 8 {
		t.Fatalf("center degree with diagonals = %d, want 8", got)
	}
}

func TestUniformSinkAtOrigin(t *testing.T) {
	r := rng.New(2)
	u := Uniform(50, 100, 100, 25, r)
	if u.Pos[0] != (Point{0, 0}) {
		t.Fatalf("sink not at origin: %v", u.Pos[0])
	}
	if u.N() != 50 {
		t.Fatalf("n = %d", u.N())
	}
	for i, p := range u.Pos {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node %d out of field: %v", i, p)
		}
	}
}

func TestCorridorBounds(t *testing.T) {
	r := rng.New(3)
	c := Corridor(40, 200, 10, 30, r)
	for i, p := range c.Pos {
		if p.X < 0 || p.X > 200 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("node %d out of corridor: %v", i, p)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	r := rng.New(4)
	u := Uniform(60, 100, 100, 30, r)
	for a := 0; a < u.N(); a++ {
		for _, b := range u.Neighbors(NodeID(a)) {
			found := false
			for _, back := range u.Neighbors(b) {
				if back == NodeID(a) {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %d->%d", a, b)
			}
		}
	}
}

func TestNoSelfLoops(t *testing.T) {
	r := rng.New(5)
	u := Uniform(40, 50, 50, 40, r)
	for a := 0; a < u.N(); a++ {
		for _, b := range u.Neighbors(NodeID(a)) {
			if b == NodeID(a) {
				t.Fatalf("self loop at %d", a)
			}
		}
	}
}

func TestConnectedGrid(t *testing.T) {
	r := rng.New(6)
	g := Grid(7, 10, 1, 12, r)
	if !g.Connected() {
		t.Fatal("jittered grid with generous range should be connected")
	}
}

func TestDisconnected(t *testing.T) {
	// Two nodes 100m apart with 10m range cannot communicate.
	tp := build([]Point{{0, 0}, {100, 0}}, 10)
	if tp.Connected() {
		t.Fatal("reported connected for a partitioned pair")
	}
	hops := tp.HopCounts()
	if hops[1] != -1 {
		t.Fatalf("unreachable node hop = %d, want -1", hops[1])
	}
}

func TestHopCounts(t *testing.T) {
	// Chain 0-1-2-3 at spacing 10, range 10.
	pts := []Point{{0, 0}, {10, 0}, {20, 0}, {30, 0}}
	tp := build(pts, 10.5)
	hops := tp.HopCounts()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestLinksDirectedBothWays(t *testing.T) {
	pts := []Point{{0, 0}, {5, 0}}
	tp := build(pts, 10)
	links := tp.Links()
	if len(links) != 2 {
		t.Fatalf("links = %v, want two directed links", links)
	}
}

func TestSummary(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {20, 0}}
	tp := build(pts, 10.5)
	s := tp.Summary()
	if !s.Connected || s.Nodes != 3 || s.MaxHops != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Fatalf("degrees = %d..%d, want 1..2", s.MinDegree, s.MaxDegree)
	}
	if math.Abs(s.AvgHops-1.5) > 1e-9 { // nodes 1,2 at hops 1,2
		t.Fatalf("avg hops = %v, want 1.5", s.AvgHops)
	}
}

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Uniform(30, 100, 100, 25, rng.New(77))
	b := Uniform(30, 100, 100, 25, rng.New(77))
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("same seed produced different topologies at node %d", i)
		}
	}
}

// Property: adjacency matches the range predicate exactly, for random fields.
func TestQuickAdjacencyMatchesRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		tp := Uniform(n, 50, 50, 20, rng.New(seed))
		for a := 0; a < n; a++ {
			isNb := map[NodeID]bool{}
			for _, b := range tp.Neighbors(NodeID(a)) {
				isNb[b] = true
			}
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				want := Dist(tp.Pos[a], tp.Pos[b]) <= 20
				if isNb[NodeID(b)] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildUniform400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Uniform(400, 200, 200, 25, rng.New(uint64(i)))
	}
}

func TestLinkString(t *testing.T) {
	l := Link{From: 3, To: 7}
	if l.String() != "3->7" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestFromPointsCopiesInput(t *testing.T) {
	pts := []Point{{0, 0}, {5, 0}}
	tp := FromPoints(pts, 10)
	pts[1].X = 1000 // mutate the caller's slice
	if !tp.Adjacent(0, 1) {
		t.Fatal("FromPoints aliased caller's positions")
	}
}

func TestFromPointsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty FromPoints accepted")
		}
	}()
	FromPoints(nil, 10)
}

func TestChainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chain(0) accepted")
		}
	}()
	Chain(0, 10, 10)
}

func TestGeneratorsValidation(t *testing.T) {
	r := rng.New(1)
	for name, fn := range map[string]func(){
		"grid side 0": func() { Grid(0, 10, 0, 10, r) },
		"uniform 0":   func() { Uniform(0, 10, 10, 5, r) },
		"corridor 0":  func() { Corridor(0, 10, 10, 5, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReachableFromSinkPartial(t *testing.T) {
	// Two components: {0,1} and {2,3}.
	tp := FromPoints([]Point{{0, 0}, {5, 0}, {100, 0}, {105, 0}}, 10)
	reach := tp.ReachableFromSink()
	if len(reach) != 2 {
		t.Fatalf("reachable = %v", reach)
	}
	seen := map[NodeID]bool{}
	for _, id := range reach {
		seen[id] = true
	}
	if !seen[0] || !seen[1] || seen[2] || seen[3] {
		t.Fatalf("wrong component: %v", reach)
	}
}

func TestSingletonTopology(t *testing.T) {
	tp := FromPoints([]Point{{0, 0}}, 10)
	s := tp.Summary()
	if !s.Connected || s.Nodes != 1 || s.Links != 0 || s.MaxHops != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
	if len(tp.Links()) != 0 {
		t.Fatal("singleton has links")
	}
}
