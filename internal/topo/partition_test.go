package topo

import (
	"math"
	"reflect"
	"testing"

	"dophy/internal/rng"
)

func TestPartitionBalancedAndDeterministic(t *testing.T) {
	tp := Grid(15, 10, 2, 14, rng.New(3)) // 225 nodes
	for _, k := range []int{1, 2, 4, 8} {
		owner := tp.Partition(k)
		if len(owner) != tp.N() {
			t.Fatalf("k=%d: owner covers %d nodes, want %d", k, len(owner), tp.N())
		}
		counts := make([]int, k)
		for _, s := range owner {
			if s < 0 || int(s) >= k {
				t.Fatalf("k=%d: shard id %d out of range", k, s)
			}
			counts[s]++
		}
		lo, hi := tp.N(), 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("k=%d: unbalanced shard sizes %v", k, counts)
		}
		if again := tp.Partition(k); !reflect.DeepEqual(owner, again) {
			t.Fatalf("k=%d: Partition is not deterministic", k)
		}
	}
}

func TestPartitionSingleShardAndClamp(t *testing.T) {
	tp := Chain(3, 10, 15)
	for _, s := range tp.Partition(1) {
		if s != 0 {
			t.Fatalf("k=1 assigned shard %d", s)
		}
	}
	// More shards than nodes clamps to one node per shard.
	owner := tp.Partition(10)
	seen := map[ShardID]bool{}
	for _, s := range owner {
		if seen[s] {
			t.Fatalf("k>n: shard %d owns two nodes", s)
		}
		seen[s] = true
	}
}

func TestPartitionBandsAreSpatial(t *testing.T) {
	// On a jitter-free wide grid, bands along X must give each shard an
	// X-interval disjoint from the others.
	tp := Grid(10, 10, 0, 14, rng.New(1))
	owner := tp.Partition(5)
	minX := make([]float64, 5)
	maxX := make([]float64, 5)
	for s := range minX {
		minX[s], maxX[s] = math.Inf(1), math.Inf(-1)
	}
	for id, p := range tp.Pos {
		s := owner[id]
		minX[s] = math.Min(minX[s], p.X)
		maxX[s] = math.Max(maxX[s], p.X)
	}
	for s := 1; s < 5; s++ {
		if maxX[s-1] > minX[s] {
			t.Fatalf("band %d (max %v) overlaps band %d (min %v)", s-1, maxX[s-1], s, minX[s])
		}
	}
}

func TestCrossShardClassification(t *testing.T) {
	tp := Chain(6, 10, 15) // line: only adjacent nodes linked
	owner := tp.Partition(2)
	cross, cut := tp.LinkTable().CrossShard(owner)
	wantCut := 0
	for i, l := range tp.Links() {
		want := owner[l.From] != owner[l.To]
		if cross[i] != want {
			t.Fatalf("link %v cross=%v, want %v", l, cross[i], want)
		}
		if want {
			wantCut++
		}
	}
	if cut != wantCut {
		t.Fatalf("cut=%d, want %d", cut, wantCut)
	}
	// A chain split into two bands has exactly one cut adjacency (2 directed links).
	if cut != 2 {
		t.Fatalf("chain cut=%d, want 2", cut)
	}
}

func TestBucketedBuildMatchesPairwise(t *testing.T) {
	r := rng.New(11)
	for _, tc := range []struct {
		name string
		pos  []Point
		rng  float64
	}{
		{"grid", Grid(23, 10, 3, 14, r).Pos, 14},
		{"uniform", Uniform(400, 180, 140, 16, r).Pos, 16},
		{"corridor", Corridor(250, 600, 25, 18, r).Pos, 18},
	} {
		got := neighborsBucketed(tc.pos, tc.rng)
		want := neighborsPairwise(tc.pos, tc.rng)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: bucketed adjacency differs from pairwise", tc.name)
		}
	}
}

func TestSparseLinkTableIndexMatchesFlat(t *testing.T) {
	tp := Grid(9, 10, 2, 14, rng.New(5))
	flat := tp.LinkTable()
	if flat.idx == nil {
		t.Fatal("small table should use the flat index")
	}
	sparse := newLinkTable(tp.neighbors)
	sparse.idx = nil
	for from := NodeID(0); int(from) < tp.N(); from++ {
		for to := NodeID(0); int(to) < tp.N(); to++ {
			l := Link{From: from, To: to}
			if got, want := sparse.Index(l), flat.Index(l); got != want {
				t.Fatalf("Index(%v): sparse=%d flat=%d", l, got, want)
			}
		}
	}
	if got := sparse.Index(Link{From: -1, To: 2}); got != NoLink {
		t.Fatalf("out-of-range Index = %d, want NoLink", got)
	}
}

func TestPartitionDegenerateCases(t *testing.T) {
	tp := Chain(5, 10, 15)
	n := tp.N()

	// More shards than nodes clamps to n: every node becomes its own
	// single-node stripe and the shard ids stay densely numbered.
	for _, k := range []int{n, n + 1, 3 * n} {
		owner := tp.Partition(k)
		perShard := make([]int, n)
		for id, s := range owner {
			if s < 0 || int(s) >= n {
				t.Fatalf("k=%d: node %d got shard %d, want [0,%d)", k, id, s, n)
			}
			perShard[s]++
		}
		for s, c := range perShard {
			if c != 1 {
				t.Fatalf("k=%d: shard %d owns %d nodes, want exactly 1", k, s, c)
			}
		}
	}

	// Single-node stripes on a chain cut every adjacency: the cut is the
	// whole directed link set.
	cross, cut := tp.LinkTable().CrossShard(tp.Partition(n))
	if cut != len(tp.Links()) {
		t.Fatalf("n-way chain cut=%d, want all %d directed links", cut, len(tp.Links()))
	}
	for i, c := range cross {
		if !c {
			t.Fatalf("n-way chain: link %d not classified cross-shard", i)
		}
	}

	// One shard: a single band, so the cut is empty and no link is cross.
	cross, cut = tp.LinkTable().CrossShard(tp.Partition(1))
	if cut != 0 {
		t.Fatalf("k=1 cut=%d, want 0", cut)
	}
	for i, c := range cross {
		if c {
			t.Fatalf("k=1: link %d classified cross-shard", i)
		}
	}
}
