package topo

import (
	"fmt"
	"sort"
)

// ShardID identifies a shard of a spatial partition. Like LinkIdx it is a
// defined type so the lint value-flow rules can keep shard indices, node
// ids and link indices in separate domains.
type ShardID int32

// Partition assigns every node to one of k spatial shards and returns the
// owner map, indexed by NodeID. Shards are contiguous bands along the
// layout's wider axis with balanced node counts (sizes differ by at most
// one), so cross-shard links exist only between geometrically adjacent
// bands and the cut stays proportional to the band perimeter.
//
// The assignment is a pure function of the node positions and k: nodes are
// ordered by (band-axis coordinate, other coordinate, id) and cut into k
// equal runs. It is independent of shard count used elsewhere, so the same
// topology partitioned at different k yields nested, deterministic bands.
func (t *Topology) Partition(k int) []ShardID {
	n := t.N()
	if k < 1 {
		panic(fmt.Sprintf("topo: partition into %d shards", k))
	}
	if k > n {
		k = n
	}
	var minX, maxX, minY, maxY float64
	for i, p := range t.Pos {
		if i == 0 || p.X < minX {
			minX = p.X
		}
		if i == 0 || p.X > maxX {
			maxX = p.X
		}
		if i == 0 || p.Y < minY {
			minY = p.Y
		}
		if i == 0 || p.Y > maxY {
			maxY = p.Y
		}
	}
	alongX := maxX-minX >= maxY-minY
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := t.Pos[order[a]], t.Pos[order[b]]
		ca, cb := pa.X, pb.X
		oa, ob := pa.Y, pb.Y
		if !alongX {
			ca, cb, oa, ob = pa.Y, pb.Y, pa.X, pb.X
		}
		if ca != cb {
			return ca < cb
		}
		if oa != ob {
			return oa < ob
		}
		return order[a] < order[b]
	})
	owner := make([]ShardID, n)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		for _, id := range order[lo:hi] {
			owner[id] = ShardID(s)
		}
	}
	return owner
}

// CrossShard classifies every directed link of the table against a
// Partition owner map: cross[i] is true when link i's endpoints live on
// different shards. The second result is the number of cross-shard links —
// the cut size that bounds barrier traffic in the sharded engine.
func (t *LinkTable) CrossShard(owner []ShardID) (cross []bool, cut int) {
	if len(owner) != t.n {
		panic(fmt.Sprintf("topo: owner map covers %d nodes, table has %d", len(owner), t.n))
	}
	cross = make([]bool, len(t.links))
	for i, l := range t.links {
		if owner[l.From] != owner[l.To] {
			cross[i] = true
			cut++
		}
	}
	return cross, cut
}
