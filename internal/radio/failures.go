package radio

import (
	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

// NodeFailures wraps another Model with node-level crash/recover dynamics:
// while a node is down its radio is silent, so every link touching it has
// PRR 0. Routing is not told anything — it discovers failures exactly as a
// real protocol would, through missing beacons and failed transmissions,
// and the network re-routes around the hole. This is the strongest form of
// "dynamic sensor network" the paper targets, used by experiment F7.
//
// Per-node up/down dwell times are exponential with means MTBF and MTTR;
// the sink never fails. State advances lazily per query, deterministically
// from the seed.
type NodeFailures struct {
	inner Model
	mtbf  sim.Time // mean time between failures (up dwell)
	mttr  sim.Time // mean time to repair (down dwell)
	nodes []*failState
}

type failState struct {
	down     bool
	nextFlip sim.Time
	r        *rng.Source
}

// NewNodeFailures wraps inner with failures over an n-node network.
func NewNodeFailures(inner Model, n int, mtbf, mttr sim.Time, seed uint64) *NodeFailures {
	if mtbf <= 0 || mttr <= 0 {
		panic("radio: MTBF and MTTR must be positive")
	}
	if n < 1 {
		panic("radio: need at least one node")
	}
	m := &NodeFailures{inner: inner, mtbf: mtbf, mttr: mttr, nodes: make([]*failState, n)}
	for i := range m.nodes {
		r := rng.New(linkSeed(seed, topo.Link{From: topo.NodeID(i), To: topo.NodeID(i)}))
		m.nodes[i] = &failState{r: r, nextFlip: sim.Time(r.Exp(1 / float64(mtbf)))}
	}
	return m
}

// advance brings node i's state up to time now.
func (m *NodeFailures) advance(i topo.NodeID, now sim.Time) *failState {
	st := m.nodes[i]
	for st.nextFlip <= now {
		st.down = !st.down
		mean := m.mtbf
		if st.down {
			mean = m.mttr
		}
		st.nextFlip += sim.Time(st.r.Exp(1 / float64(mean)))
	}
	return st
}

// Down reports whether node id is failed at time now. The sink reports
// false always.
func (m *NodeFailures) Down(id topo.NodeID, now sim.Time) bool {
	if id == topo.Sink || int(id) >= len(m.nodes) {
		return false
	}
	return m.advance(id, now).down
}

// PRR implements Model: zero while either endpoint is down.
func (m *NodeFailures) PRR(l topo.Link, now sim.Time) float64 {
	if m.Down(l.From, now) || m.Down(l.To, now) {
		return 0
	}
	return m.inner.PRR(l, now)
}

// DownCount returns how many non-sink nodes are down at time now.
func (m *NodeFailures) DownCount(now sim.Time) int {
	n := 0
	for i := 1; i < len(m.nodes); i++ {
		if m.Down(topo.NodeID(i), now) {
			n++
		}
	}
	return n
}
