// Package radio models per-link packet reception ratios (PRR) and their
// evolution over time.
//
// The MAC layer asks the radio model for the *current* success probability
// of a directed link and then performs per-attempt Bernoulli trials against
// it. The model owns the ground truth: the experiment harness scores
// tomography estimates against what the radio actually did (empirical
// per-attempt success ratios recorded by the trace package) or, for links
// with little traffic, against the model probability itself.
//
// Three temporal behaviours cover the evaluation axes:
//
//   - Static: link quality fixed for the whole run (baseline-friendly).
//   - RandomWalk: PRR drifts as a bounded random walk (slow environment
//     change; drives ETX re-estimation and parent churn).
//   - GilbertElliott: two-state Markov bursts (good/bad), the standard model
//     for bursty low-power wireless losses.
//
// All per-link randomness derives deterministically from the model seed and
// the link endpoints, so a scenario replays identically regardless of query
// order differences between schemes.
package radio

import (
	"math"

	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

// Model yields the instantaneous delivery probability of a directed link.
type Model interface {
	// PRR returns the probability in [0,1] that a single transmission on
	// link l at time now is received.
	PRR(l topo.Link, now sim.Time) float64
}

// prrFromDistance maps distance to a base PRR with the classic logistic
// falloff around the nominal communication range: near links are excellent,
// links at the range edge are in the transitional region.
func prrFromDistance(d, commRange float64) float64 {
	// Center the transition at 80% of range; width 12% of range.
	mid := 0.8 * commRange
	width := 0.12 * commRange
	p := 1 / (1 + math.Exp((d-mid)/width))
	return clamp(p, 0.01, 0.999)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// BaseParams shape the initial per-link PRR assignment.
type BaseParams struct {
	// ShadowStd is the standard deviation of per-link lognormal shadowing
	// applied to the distance-derived PRR (in logit space). 0 disables it.
	ShadowStd float64
	// MinPRR floors the initial assignment so that no link is born useless.
	MinPRR float64
}

// DefaultBase returns parameters giving a realistic mix of good and
// intermediate links.
func DefaultBase() BaseParams {
	return BaseParams{ShadowStd: 0.8, MinPRR: 0.05}
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }
func expit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// linkSeed mixes the model seed with the link endpoints so every link gets
// its own deterministic stream independent of map iteration order.
func linkSeed(seed uint64, l topo.Link) uint64 {
	x := seed ^ (uint64(l.From)+1)*0x9e3779b97f4a7c15 ^ (uint64(l.To)+1)*0xc2b2ae3d27d4eb4f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// basePRRs assigns every directed link an initial PRR from distance plus
// shadowing. Both directions share the shadowing draw scaled by an
// asymmetry perturbation, reflecting measured WSN link asymmetry.
func basePRRs(t *topo.Topology, bp BaseParams, r *rng.Source) map[topo.Link]float64 {
	out := make(map[topo.Link]float64)
	for _, l := range t.Links() {
		if l.From > l.To {
			continue // handle each undirected pair once
		}
		d := t.Distance(l.From, l.To)
		base := prrFromDistance(d, t.Range)
		shadow := 0.0
		if bp.ShadowStd > 0 {
			shadow = r.Normal(0, bp.ShadowStd)
		}
		asym := r.Normal(0, bp.ShadowStd/4)
		fwd := clamp(expit(logit(base)+shadow+asym), bp.MinPRR, 0.999)
		rev := clamp(expit(logit(base)+shadow-asym), bp.MinPRR, 0.999)
		out[l] = fwd
		out[topo.Link{From: l.To, To: l.From}] = rev
	}
	return out
}

// Static is a Model whose link qualities never change.
type Static struct {
	prr map[topo.Link]float64
}

// NewStatic builds a static model over the topology.
func NewStatic(t *topo.Topology, bp BaseParams, seed uint64) *Static {
	return &Static{prr: basePRRs(t, bp, rng.New(seed))}
}

// NewStaticUniformLoss builds a static model where every link has the same
// loss ratio — handy for analytic validation tests.
func NewStaticUniformLoss(t *topo.Topology, loss float64) *Static {
	prr := make(map[topo.Link]float64)
	for _, l := range t.Links() {
		prr[l] = clamp(1-loss, 0, 1)
	}
	return &Static{prr: prr}
}

// PRR implements Model.
func (s *Static) PRR(l topo.Link, _ sim.Time) float64 { return s.prr[l] }

// SetPRR overrides one link's quality (used by tests and fault injection).
func (s *Static) SetPRR(l topo.Link, p float64) { s.prr[l] = clamp(p, 0, 1) }

// RandomWalk drifts each link's PRR in logit space with reflecting bounds.
// Queries are lazy: state advances by whole steps of Interval since the last
// query, so cost is proportional to elapsed virtual time, not query count.
type RandomWalk struct {
	Interval sim.Time // walk step period (seconds)
	StepStd  float64  // per-step logit-space std deviation
	links    map[topo.Link]*walkState
}

type walkState struct {
	logitPRR float64
	lastStep int64
	r        *rng.Source
}

// NewRandomWalk builds a drifting model. Larger StepStd means faster link
// dynamics and therefore more routing churn.
func NewRandomWalk(t *topo.Topology, bp BaseParams, interval sim.Time, stepStd float64, seed uint64) *RandomWalk {
	if interval <= 0 {
		panic("radio: random walk interval must be positive")
	}
	base := basePRRs(t, bp, rng.New(seed))
	m := &RandomWalk{Interval: interval, StepStd: stepStd, links: make(map[topo.Link]*walkState)}
	for l, p := range base {
		m.links[l] = &walkState{logitPRR: logit(p), r: rng.New(linkSeed(seed, l))}
	}
	return m
}

// PRR implements Model, advancing the walk lazily.
func (m *RandomWalk) PRR(l topo.Link, now sim.Time) float64 {
	st, ok := m.links[l]
	if !ok {
		return 0
	}
	step := int64(now / m.Interval)
	for st.lastStep < step {
		st.logitPRR += st.r.Normal(0, m.StepStd)
		// Reflect at logit(0.02) and logit(0.995) to keep links plausible.
		lo, hi := logit(0.02), logit(0.995)
		if st.logitPRR < lo {
			st.logitPRR = 2*lo - st.logitPRR
		}
		if st.logitPRR > hi {
			st.logitPRR = 2*hi - st.logitPRR
		}
		st.lastStep++
	}
	return expit(st.logitPRR)
}

// GilbertElliott gives each link a two-state Markov burst process: in the
// good state the link keeps its base PRR; in the bad state the PRR drops by
// BadFactor. Dwell times are exponential.
type GilbertElliott struct {
	MeanGood  sim.Time // mean dwell in good state
	MeanBad   sim.Time // mean dwell in bad state
	BadFactor float64  // multiplier applied to base PRR in bad state
	links     map[topo.Link]*geState
}

type geState struct {
	base     float64
	bad      bool
	nextFlip sim.Time
	r        *rng.Source
}

// NewGilbertElliott builds the burst model.
func NewGilbertElliott(t *topo.Topology, bp BaseParams, meanGood, meanBad sim.Time, badFactor float64, seed uint64) *GilbertElliott {
	if meanGood <= 0 || meanBad <= 0 {
		panic("radio: Gilbert-Elliott dwell times must be positive")
	}
	base := basePRRs(t, bp, rng.New(seed))
	m := &GilbertElliott{MeanGood: meanGood, MeanBad: meanBad, BadFactor: badFactor, links: make(map[topo.Link]*geState)}
	for l, p := range base {
		r := rng.New(linkSeed(seed, l))
		m.links[l] = &geState{base: p, r: r, nextFlip: sim.Time(r.Exp(1 / float64(meanGood)))}
	}
	return m
}

// PRR implements Model, advancing the Markov chain lazily.
func (m *GilbertElliott) PRR(l topo.Link, now sim.Time) float64 {
	st, ok := m.links[l]
	if !ok {
		return 0
	}
	for st.nextFlip <= now {
		st.bad = !st.bad
		mean := m.MeanGood
		if st.bad {
			mean = m.MeanBad
		}
		st.nextFlip += sim.Time(st.r.Exp(1 / float64(mean)))
	}
	if st.bad {
		return clamp(st.base*m.BadFactor, 0.01, 1)
	}
	return st.base
}
