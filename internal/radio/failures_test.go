package radio

import (
	"math"
	"testing"

	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

func TestNodeFailuresSinkNeverDown(t *testing.T) {
	tp := topo.Grid(3, 10, 0, 15, rng.New(1))
	inner := NewStaticUniformLoss(tp, 0)
	m := NewNodeFailures(inner, tp.N(), 50, 20, 3)
	for now := sim.Time(0); now < 5000; now += 7 {
		if m.Down(topo.Sink, now) {
			t.Fatal("sink failed")
		}
	}
}

func TestNodeFailuresZeroPRRWhileDown(t *testing.T) {
	tp := topo.Grid(3, 10, 0, 15, rng.New(2))
	inner := NewStaticUniformLoss(tp, 0)
	m := NewNodeFailures(inner, tp.N(), 30, 30, 5)
	l := topo.Link{From: 4, To: 5}
	sawDownZero, sawUpFull := false, false
	for now := sim.Time(0); now < 3000; now += 1 {
		p := m.PRR(l, now)
		downEither := m.Down(4, now) || m.Down(5, now)
		if downEither {
			if p != 0 {
				t.Fatalf("PRR %v while endpoint down at %v", p, now)
			}
			sawDownZero = true
		} else {
			if p != 1 {
				t.Fatalf("PRR %v while both up at %v", p, now)
			}
			sawUpFull = true
		}
	}
	if !sawDownZero || !sawUpFull {
		t.Fatalf("states not both exercised: down=%v up=%v", sawDownZero, sawUpFull)
	}
}

func TestNodeFailuresAvailability(t *testing.T) {
	tp := topo.Grid(4, 10, 0, 15, rng.New(3))
	inner := NewStaticUniformLoss(tp, 0)
	// MTBF 80, MTTR 20 => availability ~0.8.
	m := NewNodeFailures(inner, tp.N(), 80, 20, 7)
	downTime, total := 0.0, 0.0
	node := topo.NodeID(5)
	const dt = 0.5
	for now := sim.Time(0); now < 50000; now += dt {
		if m.Down(node, now) {
			downTime += dt
		}
		total += dt
	}
	frac := downTime / total
	if math.Abs(frac-0.2) > 0.04 {
		t.Fatalf("down fraction = %v, want ~0.2", frac)
	}
}

func TestNodeFailuresDownCount(t *testing.T) {
	tp := topo.Grid(4, 10, 0, 15, rng.New(4))
	inner := NewStaticUniformLoss(tp, 0)
	m := NewNodeFailures(inner, tp.N(), 10, 10, 9)
	sawSome := false
	for now := sim.Time(0); now < 500; now += 5 {
		n := m.DownCount(now)
		if n < 0 || n > tp.N()-1 {
			t.Fatalf("down count %d out of range", n)
		}
		if n > 0 {
			sawSome = true
		}
	}
	if !sawSome {
		t.Fatal("no failures in 500s with MTBF 10")
	}
}

func TestNodeFailuresDeterministic(t *testing.T) {
	tp := topo.Grid(3, 10, 0, 15, rng.New(5))
	inner := NewStaticUniformLoss(tp, 0)
	a := NewNodeFailures(inner, tp.N(), 40, 15, 11)
	b := NewNodeFailures(inner, tp.N(), 40, 15, 11)
	for now := sim.Time(0); now < 2000; now += 3 {
		for i := 0; i < tp.N(); i++ {
			if a.Down(topo.NodeID(i), now) != b.Down(topo.NodeID(i), now) {
				t.Fatalf("failure schedules diverged at node %d time %v", i, now)
			}
		}
	}
}

func TestNodeFailuresValidation(t *testing.T) {
	tp := topo.Grid(2, 10, 0, 15, rng.New(6))
	inner := NewStaticUniformLoss(tp, 0)
	for name, fn := range map[string]func(){
		"zero mtbf": func() { NewNodeFailures(inner, 4, 0, 1, 1) },
		"zero mttr": func() { NewNodeFailures(inner, 4, 1, 0, 1) },
		"no nodes":  func() { NewNodeFailures(inner, 0, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNodeFailuresOutOfRangeNode(t *testing.T) {
	tp := topo.Grid(2, 10, 0, 15, rng.New(7))
	inner := NewStaticUniformLoss(tp, 0)
	m := NewNodeFailures(inner, tp.N(), 10, 10, 1)
	if m.Down(topo.NodeID(1000), 50) {
		t.Fatal("out-of-range node reported down")
	}
}
