package radio

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

func testTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp := topo.Grid(4, 10, 0, 15, rng.New(1))
	if !tp.Connected() {
		t.Fatal("test topology disconnected")
	}
	return tp
}

func TestPRRFromDistanceMonotone(t *testing.T) {
	prev := 1.0
	for d := 0.0; d <= 30; d += 0.5 {
		p := prrFromDistance(d, 20)
		if p > prev+1e-12 {
			t.Fatalf("PRR increased with distance at d=%v", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PRR out of range at d=%v: %v", d, p)
		}
		prev = p
	}
	if p := prrFromDistance(1, 20); p < 0.95 {
		t.Fatalf("very short link PRR = %v, want near 1", p)
	}
	if p := prrFromDistance(30, 20); p > 0.1 {
		t.Fatalf("beyond-range link PRR = %v, want near 0", p)
	}
}

func TestStaticStableAndInRange(t *testing.T) {
	tp := testTopo(t)
	m := NewStatic(tp, DefaultBase(), 42)
	for _, l := range tp.Links() {
		p0 := m.PRR(l, 0)
		p1 := m.PRR(l, 1000)
		if p0 != p1 {
			t.Fatalf("static PRR changed over time on %v", l)
		}
		if p0 < 0.01 || p0 > 1 {
			t.Fatalf("PRR out of range on %v: %v", l, p0)
		}
	}
}

func TestStaticDeterministicBySeed(t *testing.T) {
	tp := testTopo(t)
	a := NewStatic(tp, DefaultBase(), 7)
	b := NewStatic(tp, DefaultBase(), 7)
	c := NewStatic(tp, DefaultBase(), 8)
	same := true
	for _, l := range tp.Links() {
		if a.PRR(l, 0) != b.PRR(l, 0) {
			t.Fatalf("same seed, different PRR on %v", l)
		}
		if a.PRR(l, 0) != c.PRR(l, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical link maps")
	}
}

func TestStaticUniformLoss(t *testing.T) {
	tp := testTopo(t)
	m := NewStaticUniformLoss(tp, 0.2)
	for _, l := range tp.Links() {
		if got := m.PRR(l, 0); math.Abs(got-0.8) > 1e-12 {
			t.Fatalf("uniform loss PRR = %v, want 0.8", got)
		}
	}
}

func TestStaticSetPRR(t *testing.T) {
	tp := testTopo(t)
	m := NewStatic(tp, DefaultBase(), 1)
	l := tp.Links()[0]
	m.SetPRR(l, 0.33)
	if got := m.PRR(l, 0); got != 0.33 {
		t.Fatalf("SetPRR not applied: %v", got)
	}
	m.SetPRR(l, 2) // clamped
	if got := m.PRR(l, 0); got != 1 {
		t.Fatalf("SetPRR clamp failed: %v", got)
	}
}

func TestUnknownLinkZero(t *testing.T) {
	tp := testTopo(t)
	rw := NewRandomWalk(tp, DefaultBase(), 1, 0.1, 1)
	ge := NewGilbertElliott(tp, DefaultBase(), 10, 5, 0.3, 1)
	ghost := topo.Link{From: 1000, To: 1001}
	if rw.PRR(ghost, 0) != 0 || ge.PRR(ghost, 0) != 0 {
		t.Fatal("unknown link should have PRR 0")
	}
}

func TestRandomWalkDrifts(t *testing.T) {
	tp := testTopo(t)
	m := NewRandomWalk(tp, DefaultBase(), 1, 0.3, 5)
	l := tp.Links()[0]
	p0 := m.PRR(l, 0)
	p1 := m.PRR(l, 500)
	if p0 == p1 {
		t.Fatalf("random walk did not move after 500 steps: %v", p0)
	}
	if p1 < 0.01 || p1 > 1 {
		t.Fatalf("walked PRR out of range: %v", p1)
	}
}

func TestRandomWalkLazyConsistent(t *testing.T) {
	tp := testTopo(t)
	l := tp.Links()[2]
	// Query every step vs jump straight to the end: same final value.
	a := NewRandomWalk(tp, DefaultBase(), 1, 0.2, 9)
	for now := sim.Time(0); now <= 100; now++ {
		a.PRR(l, now)
	}
	pa := a.PRR(l, 100)
	b := NewRandomWalk(tp, DefaultBase(), 1, 0.2, 9)
	pb := b.PRR(l, 100)
	if math.Abs(pa-pb) > 1e-12 {
		t.Fatalf("lazy advance inconsistent: %v vs %v", pa, pb)
	}
}

func TestRandomWalkBounded(t *testing.T) {
	tp := testTopo(t)
	m := NewRandomWalk(tp, DefaultBase(), 1, 1.0, 3) // violent walk
	for _, l := range tp.Links() {
		for _, now := range []sim.Time{10, 100, 1000} {
			p := m.PRR(l, now)
			if p < 0.015 || p > 0.999 {
				t.Fatalf("walk escaped bounds on %v at %v: %v", l, now, p)
			}
		}
	}
}

func TestGilbertElliottTwoLevels(t *testing.T) {
	tp := testTopo(t)
	m := NewGilbertElliott(tp, DefaultBase(), 10, 10, 0.25, 11)
	l := tp.Links()[0]
	base := m.links[l].base
	seenGood, seenBad := false, false
	for now := sim.Time(0); now < 500; now += 0.5 {
		p := m.PRR(l, now)
		if math.Abs(p-base) < 1e-12 {
			seenGood = true
		} else if math.Abs(p-clamp(base*0.25, 0.01, 1)) < 1e-12 {
			seenBad = true
		} else {
			t.Fatalf("PRR %v is neither good (%v) nor bad level", p, base)
		}
	}
	if !seenGood || !seenBad {
		t.Fatalf("states visited: good=%v bad=%v; expected both over 500s", seenGood, seenBad)
	}
}

func TestGilbertElliottDwellFractions(t *testing.T) {
	tp := testTopo(t)
	// Asymmetric dwells: ~2/3 good, ~1/3 bad.
	m := NewGilbertElliott(tp, DefaultBase(), 20, 10, 0.2, 13)
	goodTime := 0.0
	total := 0.0
	l := tp.Links()[1]
	base := m.links[l].base
	const dt = 0.25
	for now := sim.Time(0); now < 20000; now += dt {
		if math.Abs(m.PRR(l, now)-base) < 1e-12 {
			goodTime += dt
		}
		total += dt
	}
	frac := goodTime / total
	if math.Abs(frac-2.0/3) > 0.06 {
		t.Fatalf("good-state fraction = %v, want ~0.667", frac)
	}
}

func TestConstructorsPanicOnBadParams(t *testing.T) {
	tp := testTopo(t)
	for name, fn := range map[string]func(){
		"walk zero interval": func() { NewRandomWalk(tp, DefaultBase(), 0, 0.1, 1) },
		"ge zero dwell":      func() { NewGilbertElliott(tp, DefaultBase(), 0, 1, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every model keeps PRR within [0,1] for arbitrary query times.
func TestQuickPRRInRange(t *testing.T) {
	tp := topo.Grid(3, 10, 0, 15, rng.New(2))
	models := []Model{
		NewStatic(tp, DefaultBase(), 3),
		NewRandomWalk(tp, DefaultBase(), 1, 0.4, 3),
		NewGilbertElliott(tp, DefaultBase(), 5, 5, 0.3, 3),
	}
	links := tp.Links()
	f := func(tRaw uint16, li uint8) bool {
		now := sim.Time(tRaw) / 100
		l := links[int(li)%len(links)]
		for _, m := range models {
			p := m.PRR(l, now)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomWalkPRR(b *testing.B) {
	tp := topo.Grid(10, 10, 0, 15, rng.New(1))
	m := NewRandomWalk(tp, DefaultBase(), 1, 0.2, 1)
	links := tp.Links()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PRR(links[i%len(links)], sim.Time(i)/10)
	}
}
